// Quickstart: compress one batch of embedding lookups with the hybrid
// error-bounded compressor, inspect the ratio and the reconstruction error,
// compare against the low-precision baselines, and then run a complete
// (tiny) distributed training scenario through the declarative engine.
package main

import (
	"fmt"
	"log"
	"time"

	"dlrmcomp"
)

func main() {
	// A batch of 256 embedding vectors of dimension 32, with hot-key
	// repeats like real DLRM lookups: 16 distinct vectors, Zipf-ish reuse.
	const rows, dim, vocab = 256, 32, 16
	centers := make([][]float32, vocab)
	seed := uint32(12345)
	next := func() float32 {
		seed = seed*1664525 + 1013904223
		return (float32(seed>>8)/float32(1<<24) - 0.5)
	}
	for v := range centers {
		centers[v] = make([]float32, dim)
		for j := range centers[v] {
			centers[v][j] = next()
		}
	}
	batch := make([]float32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		v := int(uint(r*2654435761) % vocab)
		if r%3 != 0 {
			v = v % 4 // hot head
		}
		batch = append(batch, centers[v]...)
	}

	// The paper's compressor with a 0.01 absolute error bound.
	c := dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
	frame, err := c.Compress(batch, dim)
	if err != nil {
		log.Fatal(err)
	}
	recon, _, err := c.Decompress(frame)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float32
	for i := range batch {
		d := recon[i] - batch[i]
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	raw := len(batch) * 4
	fmt.Printf("hybrid compressor:  %6d B -> %5d B  (CR %.1fx), max error %.4f (bound 0.01)\n",
		raw, len(frame), float64(raw)/float64(len(frame)), maxErr)

	// Baselines for contrast.
	for _, bc := range []dlrmcomp.Codec{dlrmcomp.NewFP16Codec(), dlrmcomp.NewFP8Codec(), dlrmcomp.NewLZ4LikeCodec()} {
		f, err := bc.Compress(batch, dim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %6d B -> %5d B  (CR %.1fx)\n", bc.Name()+":", raw, len(f),
			float64(raw)/float64(len(f)))
	}

	// Eq. (2): what the ratio buys at 4 GB/s with the paper's GPU codec rates.
	cr := float64(raw) / float64(len(frame))
	fmt.Printf("\nEq.(2) all-to-all speedup at 4 GB/s: %.2fx\n",
		dlrmcomp.Speedup(cr, 4e9, 52e9, 96e9))

	// End-to-end in three lines: a declarative scenario builds the whole
	// simulated cluster (dataset, topology, trainer, codec) from one value.
	// The same JSON shape drives `dlrmtrain -scenario file.json`.
	res, err := dlrmcomp.RunScenario(dlrmcomp.Scenario{
		Dataset: "kaggle", Scale: 4000, Dim: 8, Ranks: 4, Batch: 64, Steps: 10,
		BottomMLP: []int{16, 8}, TopMLP: []int{16, 8},
		Codec: "hybrid", ErrorBound: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscenario run: 4 ranks, 10 steps, loss %.4f -> %.4f, CR %.1fx, sim time %v\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], res.CompressionRatio, res.SimTime.Total().Round(time.Microsecond))
}
