// Runnable godoc examples for the facade. Each doubles as a test under
// `go test ./...` (the Output comments are checked), so the documented
// entry points cannot rot; TestFacadeExamplesExist pins their presence.
package dlrmcomp_test

import (
	"fmt"
	"math"

	"dlrmcomp"
)

// exampleModel builds a small deterministic DLRM config on the scaled
// Kaggle-like dataset, shared by the trainer examples.
func exampleModel(spec dlrmcomp.DatasetSpec) dlrmcomp.ModelConfig {
	return dlrmcomp.ModelConfig{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      8,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{16},
		TopMLP:            []int{16},
		Seed:              spec.Seed,
	}
}

// ExampleCodec compresses one batch of embedding lookups with the hybrid
// error-bounded compressor and verifies the contract every Codec obeys:
// the frame decodes to the original shape with every element within the
// error bound.
func ExampleCodec() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 100000)
	gen := dlrmcomp.NewGenerator(spec)
	m, err := dlrmcomp.NewModel(exampleModel(spec))
	if err != nil {
		panic(err)
	}
	b := gen.NextBatch(256)
	batch := m.Emb.Tables[0].Lookup(b.Indices[0]).Data // row-major [256 x 8]

	var c dlrmcomp.Codec = dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
	frame, err := c.Compress(batch, 8)
	if err != nil {
		panic(err)
	}
	recon, dim, err := c.Decompress(frame)
	if err != nil {
		panic(err)
	}
	var maxErr float64
	for i := range batch {
		maxErr = math.Max(maxErr, math.Abs(float64(batch[i]-recon[i])))
	}
	fmt.Println("dim:", dim)
	fmt.Println("within error bound:", maxErr <= 0.01)
	fmt.Println("compresses:", len(frame) < 4*len(batch))
	// Output:
	// dim: 8
	// within error bound: true
	// compresses: true
}

// ExampleBufferedCodec shows the allocation-free steady-state path: the
// frame buffer and the reconstruction destination are reused across
// iterations, and the appended frame is byte-identical to Codec.Compress.
func ExampleBufferedCodec() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 100000)
	gen := dlrmcomp.NewGenerator(spec)
	m, err := dlrmcomp.NewModel(exampleModel(spec))
	if err != nil {
		panic(err)
	}
	b := gen.NextBatch(256)
	batch := m.Emb.Tables[0].Lookup(b.Indices[0]).Data // row-major [256 x 8]

	var c dlrmcomp.BufferedCodec = dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
	var frame []byte                     // reused across steps
	recon := make([]float32, len(batch)) // reused across steps
	for step := 0; step < 3; step++ {    // steady state: no allocation
		frame, err = c.CompressAppend(frame[:0], batch, 8)
		if err != nil {
			panic(err)
		}
		if _, err := c.DecompressInto(recon, frame); err != nil {
			panic(err)
		}
	}
	direct, err := c.Compress(batch, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println("frames identical:", string(frame) == string(direct))
	// Output:
	// frames identical: true
}

// ExampleTrainer_Step runs a few synchronous hybrid-parallel training
// steps across 4 simulated GPUs with the forward all-to-all compressed,
// then checks training made progress and the exchange actually shrank.
func ExampleTrainer_Step() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 100000)
	tr, err := dlrmcomp.NewTrainer(dlrmcomp.TrainerOptions{
		Ranks: 4,
		Model: exampleModel(spec),
		CodecFor: func(int) dlrmcomp.Codec {
			return dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
		},
	})
	if err != nil {
		panic(err)
	}
	gen := dlrmcomp.NewGenerator(spec)
	var first, last float32
	for i := 0; i < 30; i++ {
		loss, err := tr.Step(gen.NextBatch(64))
		if err != nil {
			panic(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	fmt.Println("loss decreased:", last < first)
	fmt.Println("compression ratio > 2x:", tr.CompressionRatio() > 2)
	// Output:
	// loss decreased: true
	// compression ratio > 2x: true
}

// ExampleHierarchical shows the two-level topology of the paper's testbed:
// contiguous rank-to-node placement, and the two-phase all-to-all beating
// the direct algorithm once compressed payloads shrink toward the
// slow-link latency floor (fewer, larger NIC messages win).
func ExampleHierarchical() {
	topo := dlrmcomp.PaperHierarchical(4) // 4 GPUs per node
	fmt.Println("nodes for 8 ranks:", topo.Nodes(8))
	fmt.Println("node of rank 5:", topo.NodeOf(5))

	// 32 ranks exchanging small compressed frames (256 B per pair).
	const ranks = 32
	bytes := make([][]int64, ranks)
	for from := range bytes {
		bytes[from] = make([]int64, ranks)
		for to := range bytes[from] {
			if to != from {
				bytes[from][to] = 256
			}
		}
	}
	direct := topo.AllToAllCost(bytes).Total()
	twoPhase := topo.TwoPhaseAllToAllCost(bytes).Total()
	fmt.Println("two-phase beats direct on small frames:", twoPhase < direct)
	// Output:
	// nodes for 8 ranks: 2
	// node of rank 5: 1
	// two-phase beats direct on small frames: true
}

// ExampleTrainer_RunPipelined drives the same training math through the
// comm/compute overlap schedule: the forward all-to-all of batch k+1 is
// pipelined behind the MLP compute of batch k, so the overlapped
// end-to-end time lands strictly below the synchronous schedule while the
// losses stay bit-identical to a Step loop.
func ExampleTrainer_RunPipelined() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 100000)
	opts := dlrmcomp.TrainerOptions{
		Ranks:              8,
		Model:              exampleModel(spec),
		Net:                dlrmcomp.PaperHierarchical(4),
		OtherComputeFactor: 0.8,
	}
	overlapped, err := dlrmcomp.NewTrainer(opts)
	if err != nil {
		panic(err)
	}
	sync, err := dlrmcomp.NewTrainer(opts)
	if err != nil {
		panic(err)
	}

	genO := dlrmcomp.NewGenerator(spec)
	genS := dlrmcomp.NewGenerator(spec)
	losses, err := overlapped.RunPipelined(5, func(int) *dlrmcomp.Batch {
		return genO.NextBatch(64)
	})
	if err != nil {
		panic(err)
	}
	identical := true
	for _, want := range losses {
		got, err := sync.Step(genS.NextBatch(64))
		if err != nil {
			panic(err)
		}
		identical = identical && got == want
	}
	fmt.Println("losses identical to synchronous:", identical)
	fmt.Println("overlap strictly faster:",
		overlapped.OverlappedSimTime() < overlapped.SerialSimTime())
	// Output:
	// losses identical to synchronous: true
	// overlap strictly faster: true
}

// ExampleRunScenario runs one declarative scenario end to end: the Spec is
// pure data (it round-trips through JSON and drives `dlrmtrain -scenario`),
// and the engine assembles dataset, topology, codec, and trainer from it.
func ExampleRunScenario() {
	res, err := dlrmcomp.RunScenario(dlrmcomp.Scenario{
		Dataset: "kaggle", Scale: 100000, Dim: 8, Ranks: 8, Batch: 64, Steps: 4,
		Topology: "hier", RanksPerNode: 4,
		BottomMLP: []int{16, 8}, TopMLP: []int{16, 8},
		Codec: "hybrid", ErrorBound: 0.02,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("steps run:", len(res.Losses))
	fmt.Println("compressed beyond 2x:", res.CompressionRatio > 2)
	fmt.Println("hier a2a buckets split:",
		res.SimTime["fwd-a2a-intra"] > 0 && res.SimTime["fwd-a2a-inter"] > 0)
	// Output:
	// steps run: 4
	// compressed beyond 2x: true
	// hier a2a buckets split: true
}
