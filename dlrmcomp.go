// Package dlrmcomp is the public API of the DLRM communication-compression
// library — a from-scratch Go reproduction of "Accelerating Communication in
// Deep Learning Recommendation Model Training with Dual-Level Adaptive Lossy
// Compression" (SC'24).
//
// The package re-exports the three layers a downstream user needs:
//
//   - the hybrid error-bounded compressor for embedding batches
//     (NewCompressor) plus every baseline codec the paper compares against;
//   - the dual-level adaptive error-bound machinery: offline table analysis
//     and classification (OfflineAnalysis) and the iteration-wise decay
//     controller (NewController);
//   - the hybrid-parallel DLRM trainer on the simulated multi-GPU cluster
//     (NewTrainer), whose forward all-to-all the codecs accelerate — with
//     both the synchronous schedule (Trainer.Step) and the comm/compute
//     overlap schedule (Trainer.RunPipelined, bit-identical math with the
//     next batch's all-to-all hidden under the current batch's MLP);
//   - the declarative scenario engine: one Scenario value (or JSON file)
//     describes dataset, cluster shape, topology, codec, error-bound
//     schedule, and overlap, and RunScenario/SweepScenarios build and run
//     it (bit-identically at any sweep worker count);
//   - the experiment drivers regenerating every table and figure of the
//     paper's evaluation (RunExperiment, ExperimentIDs).
//
// Quick start:
//
//	c := dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
//	frame, _ := c.Compress(batch, dim)     // batch: row-major []float32
//	recon, _, _ := c.Decompress(frame)     // |recon[i]-batch[i]| <= 0.01
package dlrmcomp

import (
	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/cluster/tcptransport"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/experiments"
	"dlrmcomp/internal/fzgpulike"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lowprec"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
	"dlrmcomp/internal/scenario"
)

// Codec is the interface implemented by every communication compressor.
type Codec = codec.Codec

// BufferedCodec is a Codec with an allocation-free steady-state path:
// CompressAppend grows a caller-owned buffer with exactly the bytes
// Compress would return, and DecompressInto reconstructs into a
// caller-sized destination. The hybrid Compressor implements it.
type BufferedCodec = codec.BufferedCodec

// ErrorBounded is a Codec with a tunable absolute error bound.
type ErrorBounded = codec.ErrorBounded

// Compressor is the paper's hybrid error-bounded compressor.
type Compressor = hybrid.Codec

// Mode selects the hybrid compressor's lossless stage.
type Mode = hybrid.Mode

// Hybrid compressor modes.
const (
	// ModeAuto picks the smaller frame of the two encoders per batch.
	ModeAuto = hybrid.Auto
	// ModeVectorLZ forces the vector-based LZ encoder.
	ModeVectorLZ = hybrid.VectorLZ
	// ModeEntropy forces the optimized Huffman encoder.
	ModeEntropy = hybrid.Entropy
)

// NewCompressor returns the hybrid compressor with the given absolute error
// bound and mode.
func NewCompressor(eb float32, mode Mode) *Compressor { return hybrid.New(eb, mode) }

// Speedup evaluates the paper's Eq. (2) communication speed-up model.
func Speedup(cr, netBandwidth float64, compressBps, decompressBps float64) float64 {
	return hybrid.Speedup(cr, netBandwidth, hybrid.Throughput{Compress: compressBps, Decompress: decompressBps})
}

// --- baseline codecs --------------------------------------------------------

// NewFP16Codec returns the FP16 low-precision baseline.
func NewFP16Codec() Codec { return lowprec.FP16Codec{} }

// NewFP8Codec returns the FP8 (E4M3) low-precision baseline.
func NewFP8Codec() Codec { return lowprec.FP8Codec{Format: lowprec.E4M3} }

// NewCuSZLikeCodec returns the SZ-family error-bounded baseline.
func NewCuSZLikeCodec(eb float32) ErrorBounded { return cuszlike.New(eb, cuszlike.Lorenzo1D) }

// NewFZGPULikeCodec returns the FZ-GPU-family error-bounded baseline.
func NewFZGPULikeCodec(eb float32) ErrorBounded { return fzgpulike.New(eb) }

// NewLZ4LikeCodec returns the byte-level LZSS lossless baseline.
func NewLZ4LikeCodec() Codec { return lz4like.LZSSCodec{} }

// NewDeflateCodec returns the Deflate lossless baseline.
func NewDeflateCodec() Codec { return lz4like.DeflateCodec{} }

// --- adaptive error bounds --------------------------------------------------

// PatternStats, classification, and controller types.
type (
	// PatternStats holds a table's homogenization statistics (Eq. 1).
	PatternStats = adapt.PatternStats
	// Class is a table's error-bound class (L/M/S).
	Class = adapt.Class
	// EBConfig maps classes to error bounds.
	EBConfig = adapt.EBConfig
	// Thresholds are the Homo-Index classification cut points.
	Thresholds = adapt.Thresholds
	// Controller drives per-table, per-iteration error bounds.
	Controller = adapt.Controller
	// Schedule is an iteration-wise decay function.
	Schedule = adapt.Schedule
	// OfflineResult is the output of the offline analysis phase.
	OfflineResult = adapt.OfflineResult
	// OfflineOptions configures OfflineAnalysis.
	OfflineOptions = adapt.OfflineOptions
)

// Error-bound classes.
const (
	ClassLarge  = adapt.ClassLarge
	ClassMedium = adapt.ClassMedium
	ClassSmall  = adapt.ClassSmall
)

// Decay schedules.
const (
	ScheduleNone        = adapt.ScheduleNone
	ScheduleStepwise    = adapt.ScheduleStepwise
	ScheduleLogarithmic = adapt.ScheduleLogarithmic
	ScheduleLinear      = adapt.ScheduleLinear
	ScheduleExponential = adapt.ScheduleExponential
	ScheduleDrop        = adapt.ScheduleDrop
)

// AnalyzeTable computes homogenization statistics for one sampled lookup
// batch.
func AnalyzeTable(tableID int, sample []float32, dim int, eb float32) (PatternStats, error) {
	return adapt.AnalyzeTable(tableID, sample, dim, eb)
}

// OfflineAnalysis runs the paper's offline phase — table classification
// (Algorithm 1) and compressor selection (Algorithm 2) — over per-table
// sampled lookup batches.
func OfflineAnalysis(samples [][]float32, dim int, opts OfflineOptions) (*OfflineResult, error) {
	return adapt.OfflineAnalysis(samples, dim, opts)
}

// PaperEBConfig returns the paper's chosen bounds: L 0.05, M 0.03, S 0.01.
func PaperEBConfig() EBConfig { return adapt.PaperEBConfig() }

// NewController builds the iteration-wise decay controller over a
// classification result.
func NewController(classes []Class, cfg EBConfig, sched Schedule, phaseLen int, startFactor float64) (*Controller, error) {
	return adapt.NewController(classes, cfg, sched, phaseLen, startFactor)
}

// --- training ---------------------------------------------------------------

// Training types.
type (
	// ModelConfig describes a DLRM instance.
	ModelConfig = model.Config
	// DLRM is the single-process model.
	DLRM = model.DLRM
	// Trainer is the hybrid-parallel distributed trainer.
	Trainer = dist.Trainer
	// TrainerOptions configures the distributed trainer.
	TrainerOptions = dist.Options
	// DatasetSpec describes a synthetic Criteo-like dataset.
	DatasetSpec = criteo.Spec
	// Generator produces deterministic batches.
	Generator = criteo.Generator
	// Batch is one mini-batch of samples.
	Batch = criteo.Batch
	// Network is the flat α-β interconnect model.
	Network = netmodel.Network
	// Topology is the pluggable interconnect model collectives charge
	// simulated time against (Network and Hierarchical implement it).
	Topology = netmodel.Topology
	// Hierarchical is the two-level (intra-/inter-node) interconnect model
	// of the paper's testbed; the trainer pairs it with the two-phase
	// all-to-all and splits all-to-all buckets per link.
	Hierarchical = netmodel.Hierarchical
	// LinkCost attributes a collective's simulated time to the intra- and
	// inter-node link classes of a hierarchical machine.
	LinkCost = netmodel.LinkCost
	// Timeline is the per-link occupancy clock behind the comm/compute
	// overlap engine: reservations on different links overlap, contenders
	// for one link serialize. Trainer.RunPipelined uses one internally;
	// it is exported for custom schedule studies.
	Timeline = netmodel.Timeline
	// Transport moves bytes between ranks. By default NewTrainer runs every
	// rank in one process over the in-process fabric; setting
	// TrainerOptions.Transport to a DialTCPTransport endpoint instead runs
	// this process as one rank of a multi-process group. The transport
	// conformance suite pins both backends to bit-identical losses and
	// sim-time buckets.
	Transport = cluster.Transport
	// TCPTransportOptions configures one rank's endpoint of the TCP
	// backend: rank, world size, and rank 0's rendezvous address.
	TCPTransportOptions = tcptransport.Options
)

// NewTimeline returns an empty per-link occupancy timeline.
func NewTimeline() *Timeline { return netmodel.NewTimeline() }

// NewModel builds a single-process DLRM.
func NewModel(cfg ModelConfig) (*DLRM, error) { return model.New(cfg) }

// NewTrainer builds the distributed trainer.
func NewTrainer(opts TrainerOptions) (*Trainer, error) { return dist.NewTrainer(opts) }

// DialTCPTransport performs the TCP rendezvous for one rank and returns its
// connected endpoint. Rank 0 listens at Options.Addr; every other rank dials
// it and the group exchanges a session-stamped address book before pairwise
// connections come up. The endpoint plugs into TrainerOptions.Transport;
// cmd/dlrmworker is the ready-made per-rank worker process built on it.
func DialTCPTransport(o TCPTransportOptions) (Transport, error) { return tcptransport.Dial(o) }

// KaggleSpec returns the Criteo-Kaggle-like dataset spec.
func KaggleSpec() DatasetSpec { return criteo.KaggleSpec() }

// TerabyteSpec returns the Criteo-Terabyte-like dataset spec.
func TerabyteSpec() DatasetSpec { return criteo.TerabyteSpec() }

// ScaledSpec shrinks a spec's cardinalities by factor for fast runs.
func ScaledSpec(s DatasetSpec, factor int) DatasetSpec { return criteo.ScaledSpec(s, factor) }

// NewGenerator builds a deterministic batch generator.
func NewGenerator(spec DatasetSpec) *Generator { return criteo.NewGenerator(spec) }

// Slingshot10 returns the paper-calibrated flat interconnect model.
func Slingshot10() Network { return netmodel.Slingshot10() }

// PaperHierarchical returns the paper-calibrated two-level topology
// (NVLink inside a node, Slingshot-10 between nodes); ranksPerNode <= 0
// selects the testbed's 4 GPUs per node.
func PaperHierarchical(ranksPerNode int) Hierarchical {
	return netmodel.PaperHierarchical(ranksPerNode)
}

// --- scenarios --------------------------------------------------------------

// Scenario types: the declarative configuration layer. A Scenario is pure
// data (JSON round-trip) describing a complete training run — dataset,
// model shape, cluster shape and topology, codec and error bound, adaptive
// schedule, overlap — and the engine builds and runs it.
type (
	// Scenario declares one training scenario (internal/scenario.Spec).
	Scenario = scenario.Spec
	// ScenarioResult is one completed scenario: loss curve, eval metrics,
	// compression ratio, and the sim-time breakdown.
	ScenarioResult = scenario.Result
	// ScenarioAxes expands per-axis value lists into the cross product of
	// Scenarios for SweepScenarios.
	ScenarioAxes = scenario.Axes
	// SweepOptions tunes the parallel sweep runner.
	SweepOptions = scenario.SweepOptions
	// Breakdown is a labelled set of sim-time buckets
	// (ScenarioResult.SimTime).
	Breakdown = profileutil.Breakdown
)

// RunScenario validates, builds, and runs one scenario.
func RunScenario(s Scenario) (*ScenarioResult, error) { return scenario.Run(s) }

// SweepScenarios runs every scenario on a bounded worker pool, returning
// results in input order; results are bit-identical at any worker count.
func SweepScenarios(specs []Scenario, opts SweepOptions) ([]*ScenarioResult, error) {
	return scenario.Sweep(specs, opts)
}

// LoadScenario reads a Scenario from a JSON file (unknown fields are an
// error). The same files drive `dlrmtrain -scenario`.
func LoadScenario(path string) (Scenario, error) { return scenario.LoadFile(path) }

// --- experiments ------------------------------------------------------------

// ExperimentResult is a completed experiment.
type ExperimentResult = experiments.Result

// ExperimentOptions tunes experiment cost.
type ExperimentOptions = experiments.Options

// RunExperiment regenerates one of the paper's tables or figures
// (IDs per ExperimentIDs, e.g. "fig11", "table5").
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }
