package dlrmcomp

import (
	"io"

	"dlrmcomp/internal/serve"
)

// This file exports the serving layer: sharded embedding servers loaded
// from a DLCK checkpoint, with a Zipf-aware hot-row cache of decoded rows
// over a compressed cold tier, admission control, and micro-batching.
// Lossless cold codecs serve scores bit-identical to the uncompressed
// model; the "quant" codec trades a bounded score deviation for an
// actually-compressed resident cold tier.

// ServeOptions configures a Server: shard count, cold-tier codec and
// quantization bound, hot-cache byte budget, and the micro-batching knobs
// (batch size, linger, queue depth, workers).
type ServeOptions = serve.Options

// ServeStats is a point-in-time snapshot of a Server's request, cache,
// and memory counters.
type ServeStats = serve.Stats

// Server is a sharded, cached embedding-model scorer.
type Server = serve.Server

// ErrServerOverloaded is returned by Server.Score when admission control
// sheds the request; ErrServerClosed after Close.
var (
	ErrServerOverloaded = serve.ErrOverloaded
	ErrServerClosed     = serve.ErrClosed
)

// ServeColdCodecs lists the registered cold-tier codec names.
func ServeColdCodecs() []string { return serve.ColdCodecs() }

// NewServer loads a serving layer from a DLCK checkpoint stream (written
// by Trainer.SaveCheckpoint or cmd/dlrmtrain -save). The config must
// describe the architecture the checkpoint was trained under.
func NewServer(cfg ModelConfig, r io.Reader, opts ServeOptions) (*Server, error) {
	return serve.New(cfg, r, opts)
}

// NewServerFromModel serves an in-memory model directly — the test and
// experiment path that skips checkpoint serialization.
func NewServerFromModel(m *DLRM, opts ServeOptions) (*Server, error) {
	return serve.NewFromModel(m, opts)
}
