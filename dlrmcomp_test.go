package dlrmcomp

import (
	"testing"
	"time"
)

func TestFacadeCompressor(t *testing.T) {
	c := NewCompressor(0.01, ModeAuto)
	src := make([]float32, 64*16)
	for i := range src {
		src[i] = float32(i%7) * 0.1
	}
	frame, err := c.Compress(src, 16)
	if err != nil {
		t.Fatal(err)
	}
	recon, dim, err := c.Decompress(frame)
	if err != nil || dim != 16 {
		t.Fatalf("decompress: %v dim %d", err, dim)
	}
	for i := range src {
		d := recon[i] - src[i]
		if d > 0.0101 || d < -0.0101 {
			t.Fatalf("error bound violated at %d: %v", i, d)
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	src := make([]float32, 32*8)
	for i := range src {
		src[i] = float32(i) * 0.01
	}
	for _, c := range []Codec{
		NewFP16Codec(), NewFP8Codec(), NewCuSZLikeCodec(0.01),
		NewFZGPULikeCodec(0.01), NewLZ4LikeCodec(), NewDeflateCodec(),
	} {
		frame, err := c.Compress(src, 8)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if _, _, err := c.Decompress(frame); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestFacadeOfflineAnalysisAndController(t *testing.T) {
	samples := [][]float32{
		{0.1, 0.1, 0.101, 0.101, 5, 5, 9, 9}, // homogenizing
		{0, 0, 10, 10, 20, 20, 30, 30},       // well separated
	}
	res, err := OfflineAnalysis(samples, 2, OfflineOptions{SampleEB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(res.Classes, PaperEBConfig(), ScheduleStepwise, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.NumTables() != 2 {
		t.Fatal("controller tables")
	}
	if ctrl.EBAt(0, 1000) <= 0 {
		t.Fatal("EB must be positive")
	}
}

func TestFacadeTrainer(t *testing.T) {
	spec := ScaledSpec(KaggleSpec(), 100000)
	gen := NewGenerator(spec)
	tr, err := NewTrainer(TrainerOptions{
		Ranks: 2,
		Model: ModelConfig{
			DenseFeatures: 13, EmbeddingDim: 8,
			TableSizes: spec.Cardinalities,
			BottomMLP:  []int{16}, TopMLP: []int{16},
		},
		CodecFor: func(int) Codec { return NewCompressor(0.01, ModeAuto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(gen.NextBatch(32)); err != nil {
		t.Fatal(err)
	}
	if tr.CompressionRatio() <= 0 {
		t.Fatal("compression ratio not recorded")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 18 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	res, err := RunExperiment("fig6", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" {
		t.Fatal("empty result")
	}
}

func TestSpeedupModel(t *testing.T) {
	if s := Speedup(10, 4e9, 1e18, 1e18); s < 9.9 || s > 10.1 {
		t.Fatalf("speedup %v", s)
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Auto-tune over a synthetic monotone loss curve.
	res, err := AutoTuneGlobalEB([]float32{0.01, 0.05}, 0.1,
		func(eb float32) (float64, error) { return float64(eb), nil })
	if err != nil || res.BestEB != 0.05 {
		t.Fatalf("autotune: %v %+v", err, res)
	}

	// Batched compression round trip through the facade.
	c := NewCompressor(0.01, ModeAuto)
	chunks := []Chunk{
		{Vals: []float32{1, 2, 3, 4}, Dim: 2},
		{Vals: []float32{5, 6, 7, 8}, Dim: 2},
	}
	br, err := CompressBatch(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBatch(c, br)
	if err != nil || len(back) != 2 {
		t.Fatalf("batch decompress: %v", err)
	}

	// Streaming exchange.
	out, stats, err := StreamExchange(c, chunks)
	if err != nil || len(out) != 2 || stats.Chunks != 2 {
		t.Fatalf("stream: %v %+v", err, stats)
	}

	// Pipeline model: balanced 3-stage pipeline with many chunks ~ 3x.
	if s := PipelineSpeedup(time.Millisecond, time.Millisecond, time.Millisecond, 1000); s < 2.9 {
		t.Fatalf("pipeline speedup %v", s)
	}
}
