package dlrmcomp_test

import (
	"testing"

	"dlrmcomp"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/tensor"
)

// allCodecs returns every codec in the repository with a mid-range error
// bound where applicable.
func allCodecs() []codec.Codec {
	return []codec.Codec{
		dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto),
		dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeVectorLZ),
		dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeEntropy),
		dlrmcomp.NewCuSZLikeCodec(0.01),
		cuszlike.New(0.01, cuszlike.Lorenzo2D),
		dlrmcomp.NewFZGPULikeCodec(0.01),
		dlrmcomp.NewLZ4LikeCodec(),
		dlrmcomp.NewDeflateCodec(),
		dlrmcomp.NewFP16Codec(),
		dlrmcomp.NewFP8Codec(),
	}
}

// TestConformanceRoundTrip checks every codec across a grid of shapes and
// value distributions.
func TestConformanceRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	shapes := []struct{ rows, dim int }{{1, 1}, {1, 64}, {7, 3}, {128, 16}, {33, 47}}
	for _, c := range allCodecs() {
		for _, sh := range shapes {
			src := make([]float32, sh.rows*sh.dim)
			rng.FillNormal(src, 0, 0.3)
			recon, _, err := codec.RoundTrip(c, src, sh.dim)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", c.Name(), sh.rows, sh.dim, err)
			}
			if !c.Lossy() {
				for i := range src {
					if recon[i] != src[i] {
						t.Fatalf("%s: lossless codec changed data", c.Name())
					}
				}
			}
		}
	}
}

// TestConformanceBufferedPath checks the buffered helpers against every
// codec: for codec.BufferedCodec implementations (the hybrid family) the
// appended frame must be byte-identical to Compress and the in-place
// reconstruction identical to Decompress; for the rest the fallback path
// must behave the same way.
func TestConformanceBufferedPath(t *testing.T) {
	rng := tensor.NewRNG(7)
	src := make([]float32, 96*16)
	rng.FillNormal(src, 0, 0.3)
	for _, c := range allCodecs() {
		ref, err := c.Compress(src, 16)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		frame, err := codec.CompressAppend(c, []byte{0xA5}, src, 16)
		if err != nil {
			t.Fatalf("%s: CompressAppend: %v", c.Name(), err)
		}
		if frame[0] != 0xA5 || len(frame)-1 != len(ref) {
			t.Fatalf("%s: CompressAppend corrupted the destination", c.Name())
		}
		for i, b := range ref {
			if frame[1+i] != b {
				t.Fatalf("%s: buffered frame differs at byte %d", c.Name(), i)
			}
		}
		refVals, refDim, err := c.Decompress(ref)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dst := make([]float32, len(refVals))
		dim, err := codec.DecompressInto(c, dst, ref)
		if err != nil {
			t.Fatalf("%s: DecompressInto: %v", c.Name(), err)
		}
		if dim != refDim {
			t.Fatalf("%s: DecompressInto dim %d, want %d", c.Name(), dim, refDim)
		}
		for i := range dst {
			if dst[i] != refVals[i] {
				t.Fatalf("%s: buffered reconstruction differs at %d", c.Name(), i)
			}
		}
	}
}

// TestConformanceErrorBounded verifies the error-bound contract of every
// ErrorBounded codec across bounds.
func TestConformanceErrorBounded(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := make([]float32, 64*16)
	rng.FillNormal(src, 0, 1)
	for _, c := range allCodecs() {
		eb, ok := c.(codec.ErrorBounded)
		if !ok {
			continue
		}
		for _, bound := range []float32{0.001, 0.02, 0.2} {
			eb.SetErrorBound(bound)
			if eb.ErrorBound() != bound {
				t.Fatalf("%s: SetErrorBound did not stick", c.Name())
			}
			recon, _, err := codec.RoundTrip(c, src, 16)
			if err != nil {
				t.Fatalf("%s eb %v: %v", c.Name(), bound, err)
			}
			if e := quant.MaxError(src, recon); e > bound+1e-5 {
				t.Fatalf("%s: bound %v violated: %v", c.Name(), bound, e)
			}
		}
	}
}

// TestConformanceEmptyBatch: zero rows must round trip (or error cleanly),
// never panic.
func TestConformanceEmptyBatch(t *testing.T) {
	for _, c := range allCodecs() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked on empty batch: %v", c.Name(), r)
				}
			}()
			frame, err := c.Compress(nil, 4)
			if err != nil {
				return // clean rejection is fine
			}
			if _, _, err := c.Decompress(frame); err != nil {
				t.Fatalf("%s: cannot decode own empty frame: %v", c.Name(), err)
			}
		}()
	}
}

// TestConformanceGarbageFrames feeds deterministic random bytes into every
// decoder: errors are expected, panics are bugs.
func TestConformanceGarbageFrames(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, c := range allCodecs() {
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(200)
			frame := make([]byte, n)
			for i := range frame {
				frame[i] = byte(rng.Uint64())
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on garbage frame (trial %d, %d bytes): %v",
							c.Name(), trial, n, r)
					}
				}()
				_, _, _ = c.Decompress(frame)
			}()
		}
	}
}

// TestConformanceTruncatedFrames truncates valid frames at every prefix
// length: decoders must error or return, never panic.
func TestConformanceTruncatedFrames(t *testing.T) {
	rng := tensor.NewRNG(4)
	src := make([]float32, 32*8)
	rng.FillNormal(src, 0, 0.3)
	for _, c := range allCodecs() {
		frame, err := c.Compress(src, 8)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		step := 1
		if len(frame) > 256 {
			step = len(frame) / 256
		}
		for cut := 0; cut < len(frame); cut += step {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on truncation at %d/%d: %v",
							c.Name(), cut, len(frame), r)
					}
				}()
				_, _, _ = c.Decompress(frame[:cut])
			}()
		}
	}
}

// TestConformanceBitflips flips single bits in valid frames; decoding may
// succeed or fail but must not panic, and lossless codecs that "succeed"
// on corrupt frames are tolerated (framing checksum is out of scope, as in
// the paper's wire format).
func TestConformanceBitflips(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := make([]float32, 16*16)
	rng.FillNormal(src, 0, 0.3)
	for _, c := range allCodecs() {
		frame, err := c.Compress(src, 16)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for trial := 0; trial < 100; trial++ {
			corrupted := make([]byte, len(frame))
			copy(corrupted, frame)
			pos := rng.Intn(len(corrupted))
			corrupted[pos] ^= 1 << uint(rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on bitflip at byte %d: %v", c.Name(), pos, r)
					}
				}()
				_, _, _ = c.Decompress(corrupted)
			}()
		}
	}
}

// TestConformanceDistinctNames ensures experiment tables can key on names.
func TestConformanceDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range allCodecs() {
		if seen[c.Name()] {
			t.Fatalf("duplicate codec name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}
