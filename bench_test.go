// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the artifact each iteration), plus the
// ablation benchmarks called out in DESIGN.md. Custom metrics expose the
// numbers the paper reports (compression ratios, speedups, shares) so that
// `go test -bench=.` doubles as the reproduction run.
package dlrmcomp_test

import (
	"testing"

	"dlrmcomp"
	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/experiments"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/tensor"
	"dlrmcomp/internal/vlz"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// --- one benchmark per paper table/figure -----------------------------------

func BenchmarkFig01_Breakdown(b *testing.B)            { benchExperiment(b, "fig1") }
func BenchmarkFig04_FalsePrediction(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig05_DecayFunctions(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig06_TableSizes(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig08_AccuracyMethods(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig09_TableWise(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10_DecayVsDrop(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkFig11_CompressorComparison(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12_EndToEnd(b *testing.B)             { benchExperiment(b, "fig12") }
func BenchmarkFig13_DataFeatures(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14_PhaseDistribution(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15_BufferOpt(b *testing.B)            { benchExperiment(b, "fig15") }
func BenchmarkTable01_Characteristics(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable02_Classification(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable03_HomoIndexKaggle(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable04_HomoIndexTerabyte(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable05_PerTableCR(b *testing.B)         { benchExperiment(b, "table5") }
func BenchmarkTable06_WindowSweep(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkScaling_RankSweep(b *testing.B)          { benchExperiment(b, "scaling") }
func BenchmarkOverlap_Sweep(b *testing.B)              { benchExperiment(b, "overlap") }

// --- codec throughput benchmarks (the GB/s columns of Fig. 11) --------------

// lookupBatch builds a Zipf-reuse batch like real embedding lookups.
func lookupBatch(seed uint64, rows, dim, vocab int, std float32) []float32 {
	rng := tensor.NewRNG(seed)
	centers := make([][]float32, vocab)
	for v := range centers {
		centers[v] = make([]float32, dim)
		rng.FillNormal(centers[v], 0, std)
	}
	out := make([]float32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		v := rng.Intn(vocab)
		if rng.Float64() < 0.6 {
			v = rng.Intn(max(1, vocab/8))
		}
		out = append(out, centers[v]...)
	}
	return out
}

func benchCodec(b *testing.B, c codec.Codec, decompress bool) {
	b.Helper()
	src := lookupBatch(1, 2048, 64, 400, 0.2)
	frame, err := c.Compress(src, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if decompress {
			if _, _, err := c.Decompress(frame); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := c.Compress(src, 64); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCodec_HybridCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto), false)
}
func BenchmarkCodec_HybridDecompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto), true)
}
func BenchmarkCodec_VectorLZCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeVectorLZ), false)
}
func BenchmarkCodec_HuffmanCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeEntropy), false)
}
func BenchmarkCodec_CuSZLikeCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewCuSZLikeCodec(0.01), false)
}
func BenchmarkCodec_FZGPULikeCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewFZGPULikeCodec(0.01), false)
}
func BenchmarkCodec_LZ4LikeCompress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewLZ4LikeCodec(), false)
}
func BenchmarkCodec_FP16Compress(b *testing.B) {
	benchCodec(b, dlrmcomp.NewFP16Codec(), false)
}

// --- ablation benchmarks (DESIGN.md design decisions) ------------------------

// Ablation 1: vector-granular matching vs byte-level LZ on lookup batches.
func BenchmarkAblation_VectorVsByteLZ(b *testing.B) {
	src := lookupBatch(2, 2048, 64, 100, 0.5)
	codes := make([]int32, len(src))
	quant.New(0.01).Quantize(codes, src)
	var vCR, bCR float64
	for i := 0; i < b.N; i++ {
		vFrame, err := vlz.New(vlz.DefaultWindow).Encode(codes, 64)
		if err != nil {
			b.Fatal(err)
		}
		bFrame, err := lz4like.LZSSCodec{}.Compress(src, 64)
		if err != nil {
			b.Fatal(err)
		}
		vCR = float64(len(src)*4) / float64(len(vFrame))
		bCR = float64(len(src)*4) / float64(len(bFrame))
	}
	b.ReportMetric(vCR, "vectorLZ-CR")
	b.ReportMetric(bCR, "byteLZ-CR")
	b.ReportMetric(vCR/bCR, "advantage")
}

// Ablation 2: Lorenzo prediction raises entropy on embedding batches.
func BenchmarkAblation_PredictorEntropy(b *testing.B) {
	src := lookupBatch(3, 1024, 32, 32, 0.5)
	c := cuszlike.New(0.01, cuszlike.Lorenzo2D)
	var raw, resid float64
	for i := 0; i < b.N; i++ {
		var err error
		raw, resid, err = c.ResidualEntropy(src, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(raw, "raw-bits/sym")
	b.ReportMetric(resid, "resid-bits/sym")
}

// Ablation 3: two-phase variable-size all-to-all vs padding every message
// to the worst-case compressed size.
func BenchmarkAblation_VariableAllToAll(b *testing.B) {
	net := netmodel.Slingshot10()
	ranks := 32
	// Compressed per-pair message sizes vary ~10x (2 KB to 20 KB). The
	// padded alternative sends every pair at the worst-case pair size.
	rng := tensor.NewRNG(42)
	totals := make([]int64, ranks)
	var maxPair int64
	for from := range totals {
		for to := 0; to < ranks-1; to++ {
			sz := int64(2<<10 + rng.Intn(18<<10))
			totals[from] += sz
			if sz > maxPair {
				maxPair = sz
			}
		}
	}
	var variable, padded float64
	for i := 0; i < b.N; i++ {
		v := net.AllToAllTime(ranks, totals) + net.MetadataTime(ranks, 8)
		p := net.UniformAllToAllTime(ranks, maxPair*int64(ranks-1))
		variable = v.Seconds()
		padded = p.Seconds()
	}
	b.ReportMetric(padded/variable, "padded/variable")
}

// Ablation 3b: hierarchical two-phase all-to-all vs direct exchange on the
// paper's two-level topology, at compressed-payload message sizes where the
// slow-link latency floor dominates (the regime the scaling experiment
// shows the algorithm winning in).
func BenchmarkAblation_TwoPhaseVsDirect(b *testing.B) {
	topo := netmodel.PaperHierarchical(4)
	ranks := 128
	bytes := make([][]int64, ranks)
	rng := tensor.NewRNG(7)
	for from := range bytes {
		bytes[from] = make([]int64, ranks)
		for to := range bytes[from] {
			if to != from {
				bytes[from][to] = int64(64 + rng.Intn(448)) // compressed frames
			}
		}
	}
	var direct, twoPhase float64
	for i := 0; i < b.N; i++ {
		direct = topo.AllToAllCost(bytes).Total().Seconds()
		twoPhase = topo.TwoPhaseAllToAllCost(bytes).Total().Seconds()
	}
	b.ReportMetric(direct/twoPhase, "direct/two-phase")
}

// Ablation 4: sensitivity of the L/M/S classification to the Homo-Index
// thresholds.
func BenchmarkAblation_HomoThresholds(b *testing.B) {
	spec := criteo.ScaledSpec(criteo.KaggleSpec(), 4000)
	gen := criteo.NewGenerator(spec)
	m, err := dlrmcomp.NewModel(dlrmcomp.ModelConfig{
		DenseFeatures: spec.DenseFeatures, EmbeddingDim: 16,
		TableSizes: spec.Cardinalities, InitCardinalities: spec.FullCardinalities,
		BottomMLP: []int{32}, TopMLP: []int{32}, Seed: spec.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := gen.NextBatch(128)
	samples := make([][]float32, len(m.Emb.Tables))
	for t, tab := range m.Emb.Tables {
		samples[t] = tab.Lookup(batch.Indices[t]).Data
	}
	var smallAt30, smallAt50 int
	for i := 0; i < b.N; i++ {
		for _, th := range []adapt.Thresholds{{LHindex: 0.05, SHindex: 0.3}, {LHindex: 0.05, SHindex: 0.5}} {
			res, err := adapt.OfflineAnalysis(samples, 16, adapt.OfflineOptions{SampleEB: 0.01, Thresholds: th})
			if err != nil {
				b.Fatal(err)
			}
			_, _, s := res.ClassCounts()
			if th.SHindex == 0.3 {
				smallAt30 = s
			} else {
				smallAt50 = s
			}
		}
	}
	b.ReportMetric(float64(smallAt30), "S-tables@0.3")
	b.ReportMetric(float64(smallAt50), "S-tables@0.5")
}

// Ablation 5: window sweep throughput cost (CR side lives in Table VI).
func BenchmarkAblation_WindowThroughput(b *testing.B) {
	src := lookupBatch(4, 2048, 64, 300, 0.3)
	codes := make([]int32, len(src))
	quant.New(0.01).Quantize(codes, src)
	for _, w := range []int{32, 255} {
		enc := vlz.New(w)
		b.Run(map[int]string{32: "w32", 255: "w255"}[w], func(b *testing.B) {
			b.SetBytes(int64(len(codes) * 4))
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(codes, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 6: the comm/compute overlap engine. One trainer is driven with
// the pipelined schedule; the serial cost of the same steps is its
// baseline, so the reported speedup tracks exactly what BENCH_ci.json
// needs: the modelled e2e win of overlapping the forward all-to-all of
// batch k+1 with the MLP of batch k. Reported for the paper's 8-node × 4-
// GPU shape with the hybrid codec (math is identical either way, so the
// metric is a pure schedule property).
func BenchmarkAblation_OverlappedVsSyncStep(b *testing.B) {
	spec := criteo.ScaledSpec(criteo.TerabyteSpec(), 4000)
	cfg := dlrmcomp.ModelConfig{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      16,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{128, 64},
		TopMLP:            []int{128, 64},
		Seed:              spec.Seed + 7,
	}
	var overlapSpeedup, recovered float64
	for i := 0; i < b.N; i++ {
		tr, err := dlrmcomp.NewTrainer(dlrmcomp.TrainerOptions{
			Ranks:              32,
			Model:              cfg,
			Net:                dlrmcomp.PaperHierarchical(4),
			Device:             netmodel.Device{FLOPS: 3e12, MemBandwidth: 1.3e12},
			OtherComputeFactor: 0.8,
			CodecFor: func(int) dlrmcomp.Codec {
				return dlrmcomp.NewCompressor(0.01, dlrmcomp.ModeAuto)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		gen := criteo.NewGenerator(spec)
		if _, err := tr.RunPipelined(2, func(int) *dlrmcomp.Batch { return gen.NextBatch(256) }); err != nil {
			b.Fatal(err)
		}
		serial, over := tr.SerialSimTime(), tr.OverlappedSimTime()
		overlapSpeedup = float64(serial) / float64(over)
		recovered = float64(serial-over) / float64(serial)
	}
	b.ReportMetric(overlapSpeedup, "overlap-speedup")
	b.ReportMetric(100*recovered, "e2e-recovered-%")
}

// Eq. (2) selection as a micro-benchmark: how expensive is the offline pass.
func BenchmarkOfflineSelection(b *testing.B) {
	src := lookupBatch(5, 512, 16, 32, 0.3)
	for i := 0; i < b.N; i++ {
		if _, _, err := hybrid.SelectEncoder(src, 16, 0.01, 4e9); err != nil {
			b.Fatal(err)
		}
	}
}
